// Command mrpredict estimates the average response time of a MapReduce job
// on a Hadoop 2.x cluster using the analytic performance model.
//
// Usage:
//
//	mrpredict -nodes 4 -input-gb 1 -block-mb 128 -reduces 4 -jobs 1 \
//	          -estimator forkjoin -workload wordcount [-baselines] [-v] \
//	          [-trace history.json [-trace-trim 0.02]]
//
// With -trace, the model is initialized from the per-class statistics fitted
// out of a job-history trace (the §4.2.1 first approach; write traces with
// `mrsim -trace`) instead of the Herodotou static model.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hadoop2perf"
	"hadoop2perf/internal/timeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrpredict: ")
	var (
		nodes     = flag.Int("nodes", 4, "cluster size")
		inputGB   = flag.Float64("input-gb", 1, "input size in GB")
		blockMB   = flag.Float64("block-mb", 128, "HDFS block size in MB")
		reduces   = flag.Int("reduces", 0, "reducer count (default: one per node)")
		jobs      = flag.Int("jobs", 1, "number of identical concurrent jobs")
		estimator = flag.String("estimator", "forkjoin", "forkjoin | tripathi | literal")
		wl        = flag.String("workload", "wordcount", "wordcount | grep | terasort")
		baselines = flag.Bool("baselines", false, "also print ARIA and Herodotou baselines")
		verbose   = flag.Bool("v", false, "print per-class responses and the precedence tree")
		traceFile = flag.String("trace", "", "job-history trace (JSON) to calibrate the model from")
		traceTrim = flag.Float64("trace-trim", 0, "fraction trimmed from each duration tail when fitting the trace")
	)
	flag.Parse()

	var prof hadoop2perf.Profile
	switch *wl {
	case "wordcount":
		prof = hadoop2perf.WordCount()
	case "grep":
		prof = hadoop2perf.Grep()
	case "terasort":
		prof = hadoop2perf.TeraSort()
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	var est hadoop2perf.Estimator
	switch *estimator {
	case "forkjoin":
		est = hadoop2perf.EstimatorForkJoin
	case "tripathi":
		est = hadoop2perf.EstimatorTripathi
	case "literal":
		est = hadoop2perf.EstimatorPaperLiteral
	default:
		log.Fatalf("unknown estimator %q", *estimator)
	}
	r := *reduces
	if r <= 0 {
		r = *nodes
	}
	spec := hadoop2perf.DefaultCluster(*nodes)
	job, err := hadoop2perf.NewJob(0, *inputGB*1024, *blockMB, r, prof)
	if err != nil {
		log.Fatal(err)
	}
	cfg := hadoop2perf.ModelConfig{Spec: spec, Job: job, NumJobs: *jobs, Estimator: est}
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		res, err := hadoop2perf.ReadTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fit, err := hadoop2perf.FitTrace(res, hadoop2perf.FitOptions{TrimFraction: *traceTrim})
		if err != nil {
			log.Fatal(err)
		}
		cfg.History = fit.History
		fmt.Printf("calibrated from %s: %d jobs, %d task samples, %d classes\n",
			*traceFile, fit.Jobs, fit.Tasks, len(fit.History))
	}
	pred, err := hadoop2perf.Predict(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload=%s input=%.1fGB block=%.0fMB maps=%d reduces=%d nodes=%d jobs=%d\n",
		prof.Name, *inputGB, *blockMB, job.NumMaps(), r, *nodes, *jobs)
	fmt.Printf("estimated job response time (%s): %.1f s  (converged=%v after %d iterations)\n",
		est, pred.ResponseTime, pred.Converged, pred.Iterations)

	if *verbose {
		for _, cls := range []timeline.Class{timeline.ClassMap, timeline.ClassShuffleSort, timeline.ClassMerge} {
			fmt.Printf("  %-13s mean task response: %.2f s\n", cls, pred.ClassResponse[cls])
		}
		fmt.Printf("  timeline makespan: %.1f s, precedence tree: depth=%d leaves=%d\n",
			pred.Timeline.Makespan, pred.Tree.Depth(), pred.Tree.NumLeaves())
	}
	if *baselines {
		h, err := hadoop2perf.PredictHerodotou(job, spec)
		if err != nil {
			log.Fatal(err)
		}
		a, err := hadoop2perf.PredictARIA(job, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline herodotou (static): %.1f s\n", h.Total)
		fmt.Printf("baseline ARIA: T_low=%.1f T_avg=%.1f T_up=%.1f s\n", a.Low, a.Avg, a.Up)
	}
}
