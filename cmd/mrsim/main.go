// Command mrsim executes MapReduce jobs on the discrete-event YARN cluster
// simulator and reports measured response times; optionally it writes the
// job-history trace consumed by the model's history-based initialization.
//
// Usage:
//
//	mrsim -nodes 4 -input-gb 1 -jobs 1 -reps 5 [-trace out.json] [-fair]
//	      [-node-mttf 300 -repair 45] [-straggler-prob 0.1 -speculation] [-quantile 0.95]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hadoop2perf"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrsim: ")
	var (
		nodes    = flag.Int("nodes", 4, "cluster size")
		inputGB  = flag.Float64("input-gb", 1, "input size in GB per job")
		blockMB  = flag.Float64("block-mb", 128, "HDFS block size in MB")
		reduces  = flag.Int("reduces", 0, "reducer count (default: one per node)")
		jobs     = flag.Int("jobs", 1, "number of concurrent jobs")
		reps     = flag.Int("reps", 5, "seeded repetitions (median reported)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		fair     = flag.Bool("fair", false, "fair scheduling across jobs (default FIFO; multi-job runs usually want -fair)")
		traceOut = flag.String("trace", "", "write the median run's job-history trace to this file")
		wl       = flag.String("workload", "wordcount", "wordcount | grep | terasort")

		mttf     = flag.Float64("node-mttf", 0, "mean time to node failure in seconds (0 = no failures)")
		repair   = flag.Float64("repair", 0, "failed nodes rejoin after this many seconds (0 = stay down)")
		strag    = flag.Float64("straggler-prob", 0, "per-attempt probability of a Pareto-tail straggler slowdown")
		specOn   = flag.Bool("speculation", false, "enable speculative re-execution of late map attempts")
		quantile = flag.Float64("quantile", 0.5, "report the run at this mean-response quantile of the repetitions")
	)
	flag.Parse()

	var prof hadoop2perf.Profile
	switch *wl {
	case "wordcount":
		prof = hadoop2perf.WordCount()
	case "grep":
		prof = hadoop2perf.Grep()
	case "terasort":
		prof = hadoop2perf.TeraSort()
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	r := *reduces
	if r <= 0 {
		r = *nodes
	}
	spec := hadoop2perf.DefaultCluster(*nodes)
	var jobList []hadoop2perf.Job
	for i := 0; i < *jobs; i++ {
		job, err := hadoop2perf.NewJob(i, *inputGB*1024, *blockMB, r, prof)
		if err != nil {
			log.Fatal(err)
		}
		jobList = append(jobList, job)
	}
	pol := hadoop2perf.PolicyFIFO
	if *fair {
		pol = hadoop2perf.PolicyFair
	}
	var faults *hadoop2perf.FaultPlan
	if *mttf > 0 || *strag > 0 || *specOn {
		faults = &hadoop2perf.FaultPlan{
			NodeMTTFSec:    *mttf,
			RepairDelaySec: *repair,
			StragglerProb:  *strag,
			Speculation:    *specOn,
		}
	}
	res, err := hadoop2perf.SimulateQuantile(hadoop2perf.SimConfig{
		Spec: spec, Jobs: jobList, Seed: *seed, Scheduler: pol, Faults: faults,
	}, *reps, *quantile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster=%d nodes, %d job(s) of %.1fGB %s (%d maps, %d reduces each), scheduler=%s\n",
		*nodes, *jobs, *inputGB, prof.Name, jobList[0].NumMaps(), r, pol)
	for _, j := range res.Jobs {
		fmt.Printf("  job %d: response %.1f s (start %.1f, end %.1f, %d task records)\n",
			j.JobID, j.Response, j.Start, j.End, len(j.Tasks))
	}
	fmt.Printf("mean response: %.1f s, makespan: %.1f s, %d events\n",
		res.MeanResponse(), res.Makespan, res.Events)
	if st := res.Faults; st != nil {
		fmt.Printf("faults: %d node failures (%d revocations, %d repairs), %d tasks killed, %d re-executed, %d speculative (%d won), %d stragglers\n",
			st.NodeFailures, st.Revocations, st.NodeRepairs, st.TasksKilled,
			st.TasksReexecuted, st.SpeculativeLaunched, st.SpeculativeWins, st.StragglersInjected)
	}
	if res.FailedSeeds > 0 {
		fmt.Printf("warning: %d of %d seeded repetitions failed; quantiles use the surviving runs\n", res.FailedSeeds, *reps)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, res); err != nil {
			log.Fatal(err)
		}
		prof, err := trace.Extract(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
		for _, cls := range []mrsim.TaskClass{mrsim.ClassMap, mrsim.ClassShuffleSort, mrsim.ClassMerge} {
			cp := prof.Classes[cls]
			fmt.Printf("  %-13s n=%d meanResponse=%.2f cv=%.3f demands cpu=%.2f disk=%.2f net=%.2f\n",
				cls, cp.Count, cp.MeanResponse, cp.CVResponse, cp.MeanCPU, cp.MeanDisk, cp.MeanNetwork)
		}
	}
}
