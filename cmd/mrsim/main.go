// Command mrsim executes MapReduce jobs on the discrete-event YARN cluster
// simulator and reports measured response times; optionally it writes the
// job-history trace consumed by the model's history-based initialization.
//
// Usage:
//
//	mrsim -nodes 4 -input-gb 1 -jobs 1 -reps 5 [-trace out.json] [-fair]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hadoop2perf"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrsim: ")
	var (
		nodes    = flag.Int("nodes", 4, "cluster size")
		inputGB  = flag.Float64("input-gb", 1, "input size in GB per job")
		blockMB  = flag.Float64("block-mb", 128, "HDFS block size in MB")
		reduces  = flag.Int("reduces", 0, "reducer count (default: one per node)")
		jobs     = flag.Int("jobs", 1, "number of concurrent jobs")
		reps     = flag.Int("reps", 5, "seeded repetitions (median reported)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		fair     = flag.Bool("fair", false, "fair scheduling across jobs (default FIFO; multi-job runs usually want -fair)")
		traceOut = flag.String("trace", "", "write the median run's job-history trace to this file")
		wl       = flag.String("workload", "wordcount", "wordcount | grep | terasort")
	)
	flag.Parse()

	var prof hadoop2perf.Profile
	switch *wl {
	case "wordcount":
		prof = hadoop2perf.WordCount()
	case "grep":
		prof = hadoop2perf.Grep()
	case "terasort":
		prof = hadoop2perf.TeraSort()
	default:
		log.Fatalf("unknown workload %q", *wl)
	}
	r := *reduces
	if r <= 0 {
		r = *nodes
	}
	spec := hadoop2perf.DefaultCluster(*nodes)
	var jobList []hadoop2perf.Job
	for i := 0; i < *jobs; i++ {
		job, err := hadoop2perf.NewJob(i, *inputGB*1024, *blockMB, r, prof)
		if err != nil {
			log.Fatal(err)
		}
		jobList = append(jobList, job)
	}
	pol := hadoop2perf.PolicyFIFO
	if *fair {
		pol = hadoop2perf.PolicyFair
	}
	res, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: jobList, Seed: *seed, Scheduler: pol,
	}, *reps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster=%d nodes, %d job(s) of %.1fGB %s (%d maps, %d reduces each), scheduler=%s\n",
		*nodes, *jobs, *inputGB, prof.Name, jobList[0].NumMaps(), r, pol)
	for _, j := range res.Jobs {
		fmt.Printf("  job %d: response %.1f s (start %.1f, end %.1f, %d task records)\n",
			j.JobID, j.Response, j.Start, j.End, len(j.Tasks))
	}
	fmt.Printf("mean response: %.1f s, makespan: %.1f s, %d events\n",
		res.MeanResponse(), res.Makespan, res.Events)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.Write(f, res); err != nil {
			log.Fatal(err)
		}
		prof, err := trace.Extract(res)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
		for _, cls := range []mrsim.TaskClass{mrsim.ClassMap, mrsim.ClassShuffleSort, mrsim.ClassMerge} {
			cp := prof.Classes[cls]
			fmt.Printf("  %-13s n=%d meanResponse=%.2f cv=%.3f demands cpu=%.2f disk=%.2f net=%.2f\n",
				cls, cp.Count, cp.MeanResponse, cp.CVResponse, cp.MeanCPU, cp.MeanDisk, cp.MeanNetwork)
		}
	}
}
