module hadoop2perf

go 1.24
