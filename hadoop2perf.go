// Package hadoop2perf predicts the response time of MapReduce jobs on
// Hadoop 2.x / YARN clusters, reproducing the performance model of
// Glushkova, Jovanovic and Abelló, "MapReduce Performance Models for
// Hadoop 2.x" (EDBT/ICDT Workshops 2017).
//
// The package bundles three layers:
//
//   - an analytic model (Predict) combining Algorithm-1 timeline
//     construction, precedence trees and overlap-weighted Mean Value
//     Analysis, with the paper's two job-level estimators (fork/join-based
//     and Tripathi-based);
//   - a discrete-event YARN cluster simulator (Simulate) standing in for a
//     real Hadoop 2.x testbed, used to validate the model;
//   - static baselines from related work: Herodotou's phase cost model and
//     ARIA's makespan bounds.
//
// Quick start:
//
//	spec := hadoop2perf.DefaultCluster(4)
//	job, _ := hadoop2perf.NewJob(0, 1024, 128, 4, hadoop2perf.WordCount())
//	pred, _ := hadoop2perf.Predict(hadoop2perf.ModelConfig{Spec: spec, Job: job, NumJobs: 1})
//	fmt.Printf("estimated response: %.1fs\n", pred.ResponseTime)
package hadoop2perf

import (
	"context"
	"io"
	"net/http"
	"time"

	"hadoop2perf/internal/aria"
	"hadoop2perf/internal/cluster"
	"hadoop2perf/internal/core"
	"hadoop2perf/internal/fault"
	"hadoop2perf/internal/herodotou"
	"hadoop2perf/internal/mrsim"
	"hadoop2perf/internal/service"
	"hadoop2perf/internal/stats"
	"hadoop2perf/internal/trace"
	"hadoop2perf/internal/workflow"
	"hadoop2perf/internal/workload"
	"hadoop2perf/internal/yarn"
)

// Re-exported types: the library's public surface. See the internal packages
// for full documentation of each.
type (
	// Cluster describes a YARN cluster: a flat homogeneous spec, or a
	// heterogeneous one via Classes.
	Cluster = cluster.Spec
	// NodeClass is one hardware class of a heterogeneous cluster (a group of
	// identical nodes; see Cluster.Classes).
	NodeClass = cluster.NodeClass
	// Resource is a YARN resource vector.
	Resource = cluster.Resource
	// Job describes one MapReduce job.
	Job = workload.Job
	// Profile holds per-phase workload costs (the "job profile").
	Profile = workload.Profile
	// ModelConfig drives an analytic prediction.
	ModelConfig = core.Config
	// Prediction is the analytic model output.
	Prediction = core.Prediction
	// Estimator selects the tree estimator.
	Estimator = core.Estimator
	// SimConfig drives a cluster simulation.
	SimConfig = mrsim.Config
	// SimResult is a simulated execution.
	SimResult = mrsim.Result
	// FaultPlan is a seeded fault-injection scenario: the simulator injects
	// it, the analytic model corrects for it. Assign to SimConfig.Faults /
	// ModelConfig.Faults; nil means no injected faults.
	FaultPlan = fault.Plan
	// FaultStats counts the fault activity of one simulated run
	// (SimResult.Faults; nil when the scenario was inactive).
	FaultStats = mrsim.FaultStats
	// SchedulerPolicy orders applications in the RM's root queue.
	SchedulerPolicy = yarn.Policy
	// AriaEstimate holds ARIA makespan bounds.
	AriaEstimate = aria.Estimate
	// HerodotouEstimate holds the static phase-model prediction.
	HerodotouEstimate = herodotou.Estimate
	// ResourceEstimate holds predicted per-job resource consumption.
	ResourceEstimate = core.ResourceEstimate
	// Service is the concurrent prediction engine behind cmd/mrserved: a
	// bounded worker pool, an LRU + singleflight cache, and a parallel
	// what-if planner.
	Service = service.Service
	// ServiceOptions configures a Service.
	ServiceOptions = service.Options
	// ServerConfig tunes the HTTP layer of NewServiceHandlerConfig:
	// timeouts, body caps and per-client rate limits.
	ServerConfig = service.ServerConfig
	// ServiceMetrics is a snapshot of service counters.
	ServiceMetrics = service.Metrics
	// PredictRequest / SimulateRequest / CompareRequest / PlanRequest are
	// the service API inputs; PlanResponse ranks a what-if grid.
	PredictRequest  = service.PredictRequest
	SimulateRequest = service.SimulateRequest
	CompareRequest  = service.CompareRequest
	PlanRequest     = service.PlanRequest
	PlanResponse    = service.PlanResponse
	PlanCandidate   = service.PlanCandidate
	// CalibrateRequest / CalibrateResponse fit a named profile from a
	// job-history trace into the service's versioned registry; ProfileInfo
	// is the registry's public view of one stored profile.
	CalibrateRequest  = service.CalibrateRequest
	CalibrateResponse = service.CalibrateResponse
	ProfileInfo       = service.ProfileInfo
	// ClassStats carries one task class's model-initialization statistics
	// (ModelConfig.History values).
	ClassStats = core.ClassStats
	// FitOptions / FitResult / FittedClass drive trace-profile fitting (the
	// §4.2.1 history initialization); see FitTrace.
	FitOptions  = trace.FitOptions
	FitResult   = trace.FitResult
	FittedClass = trace.FittedClass
	// WorkflowDAG is a multi-job workflow shape: named stages plus cross-job
	// precedence edges (WorkflowEdge). Assign to SimConfig.Workflow to make
	// the simulator release each job only when its parents finish, or
	// evaluate analytically with PredictWorkflow.
	WorkflowDAG  = workflow.DAG
	WorkflowEdge = workflow.Edge
	// WorkflowPrediction is the analytic workflow result: the critical-path
	// makespan plus per-stage start/finish/slack (WorkflowStageResult).
	WorkflowPrediction  = core.WorkflowPrediction
	WorkflowStageResult = core.WorkflowStageResult
	// ServiceWorkflow is the workflow block of service Predict/Plan requests
	// (one ServiceWorkflowStage per job); WorkflowReport is the composed
	// response slice.
	ServiceWorkflow      = service.Workflow
	ServiceWorkflowStage = service.WorkflowStage
	WorkflowReport       = service.WorkflowReport
)

// Estimators (paper §4.2.4).
const (
	EstimatorForkJoin     = core.EstimatorForkJoin
	EstimatorTripathi     = core.EstimatorTripathi
	EstimatorPaperLiteral = core.EstimatorPaperLiteral
)

// Scheduler policies.
const (
	PolicyFIFO = yarn.PolicyFIFO
	PolicyFair = yarn.PolicyFair
)

// DefaultCluster returns the calibrated evaluation cluster with the given
// node count (paper §5.1).
func DefaultCluster(numNodes int) Cluster { return cluster.Default(numNodes) }

// WordCount returns the paper's evaluation workload profile.
func WordCount() Profile { return workload.WordCount() }

// Grep returns a map-heavy, low-shuffle profile.
func Grep() Profile { return workload.Grep() }

// TeraSort returns a shuffle-heavy profile.
func TeraSort() Profile { return workload.TeraSort() }

// NewJob builds a validated job: inputMB of data split into blockSizeMB
// splits, with the given reducer count and workload profile.
func NewJob(id int, inputMB, blockSizeMB float64, reduces int, p Profile) (Job, error) {
	return workload.NewJob(id, inputMB, blockSizeMB, reduces, p)
}

// Predict runs the analytic performance model (modified MVA, §4.2).
func Predict(cfg ModelConfig) (Prediction, error) { return core.Predict(cfg) }

// Predictor is a reusable, allocation-lean model evaluator (one goroutine
// at a time); see NewPredictor. Its PredictWarm method additionally retains
// converged MVA state and seeds each evaluation from the nearest
// already-solved neighbor.
type Predictor = core.Predictor

// NewPredictor returns a reusable model evaluator whose scratch buffers
// survive across predictions — the fast path for evaluating many
// configurations in a loop.
func NewPredictor() *Predictor { return core.NewPredictor() }

// PredictBatch evaluates many model configurations through one shared
// evaluator, reusing the timeline/overlap scaffolding across entries and
// warm-starting each entry from its nearest already-solved neighbor in the
// batch. Results match per-config Predict calls within 1e-6 relative (the
// property-tested warm-start contract), not bit-exactly; set
// ModelConfig.ColdStart on an entry to force the bit-identical cold path.
func PredictBatch(cfgs []ModelConfig) ([]Prediction, error) { return core.PredictBatch(cfgs) }

// EstimateResources predicts per-class and total resource consumption and
// cluster utilization for the configured job (the paper's §6 future work).
func EstimateResources(cfg ModelConfig) (ResourceEstimate, Prediction, error) {
	return core.EstimateResources(cfg)
}

// WorkflowChain builds the DAG of a linear stage chain (each stage waits
// for the previous one).
func WorkflowChain(stages ...string) *WorkflowDAG { return workflow.Chain(stages...) }

// PredictWorkflow evaluates a multi-job workflow analytically: stage i of
// the DAG runs ModelConfig cfgs[i], stages are solved in topological order
// with warm-start chaining (concurrent same-cluster stages priced at their
// wave's population), and the per-stage times compose into the workflow's
// critical-path makespan.
func PredictWorkflow(dag *WorkflowDAG, cfgs []ModelConfig) (WorkflowPrediction, error) {
	return core.PredictWorkflow(dag, cfgs)
}

// Simulate executes jobs on the discrete-event YARN cluster simulator.
func Simulate(cfg SimConfig) (SimResult, error) { return mrsim.Run(cfg) }

// SimulateMedian runs reps seeded simulations and returns the median run
// (the paper's measurement methodology, §5.1).
func SimulateMedian(cfg SimConfig, reps int) (SimResult, error) {
	return mrsim.RunMedianOfSeeds(cfg, reps)
}

// SimulateQuantile runs reps seeded simulations and returns the run at the
// given mean-response quantile (0.5, 0.95, 0.99, ...). Under a fault
// scenario the upper quantiles expose the bad draws — the runs where node
// losses or straggler tails actually hurt.
func SimulateQuantile(cfg SimConfig, reps int, q float64) (SimResult, error) {
	return mrsim.RunQuantileOfSeeds(context.Background(), cfg, reps, q)
}

// WriteTrace serializes a simulated execution as a job-history trace
// document (JSON), the format ReadTrace and the service's /v1/calibrate
// endpoint ingest.
func WriteTrace(w io.Writer, res SimResult) error { return trace.Write(w, res) }

// ReadTrace parses and validates a job-history trace document.
func ReadTrace(r io.Reader) (SimResult, error) { return trace.Read(r) }

// FitTrace distills a trace into per-class model-initialization statistics
// (§4.2.1, first approach): assign the returned FitResult.History to
// ModelConfig.History to seed predictions from measured executions instead
// of the Herodotou static model.
func FitTrace(res SimResult, opts FitOptions) (FitResult, error) { return trace.Fit(res, opts) }

// NewService builds the concurrent prediction engine: cached Predict /
// Simulate / Compare plus the parallel what-if Plan. The zero ServiceOptions
// picks sensible defaults (GOMAXPROCS workers, 1024 cache entries, 5
// simulator repetitions).
func NewService(opts ServiceOptions) *Service { return service.New(opts) }

// NewServiceHandler exposes a Service as the mrserved HTTP API (/healthz,
// /readyz, /v1/metrics, /v1/predict, /v1/simulate, /v1/compare, /v1/plan).
// A zero timeout selects the per-kind defaults (10s for predict/compare,
// 30s for simulate/plan/calibrate); clients may shrink a request's budget
// with an X-Deadline-Ms header or a timeoutSec body field.
func NewServiceHandler(s *Service, timeout time.Duration) http.Handler {
	return service.NewHandler(s, service.ServerConfig{Timeout: timeout})
}

// NewServiceHandlerConfig is NewServiceHandler with full HTTP-layer tuning:
// body caps and per-client token-bucket rate limiting (429 + Retry-After
// past ServerConfig.RateLimit req/s per client IP).
func NewServiceHandlerConfig(s *Service, cfg ServerConfig) http.Handler {
	return service.NewHandler(s, cfg)
}

// PredictARIA computes the ARIA baseline bounds.
func PredictARIA(job Job, spec Cluster) (AriaEstimate, error) { return aria.Predict(job, spec) }

// PredictHerodotou computes the static Herodotou baseline.
func PredictHerodotou(job Job, spec Cluster) (HerodotouEstimate, error) {
	return herodotou.Predict(job, spec)
}

// Comparison is the outcome of validating the model against the simulator
// for one configuration.
type Comparison struct {
	// Simulated is the median measured mean job response time.
	Simulated float64
	// ForkJoin and Tripathi are the two model estimates.
	ForkJoin float64
	Tripathi float64
	// ForkJoinErr and TripathiErr are signed relative errors vs. Simulated
	// (positive = overestimate).
	ForkJoinErr float64
	TripathiErr float64
}

// Compare validates both model variants against a simulated execution of
// numJobs concurrent copies of job (fair scheduling for numJobs > 1), using
// reps simulator repetitions.
func Compare(spec Cluster, job Job, numJobs int, seed int64, reps int) (Comparison, error) {
	jobs := make([]Job, numJobs)
	for i := range jobs {
		j := job
		j.ID = i
		jobs[i] = j
	}
	pol := PolicyFIFO
	if numJobs > 1 {
		pol = PolicyFair
	}
	res, err := mrsim.RunMedianOfSeeds(SimConfig{Spec: spec, Jobs: jobs, Seed: seed, Scheduler: pol}, reps)
	if err != nil {
		return Comparison{}, err
	}
	fj, err := core.Predict(ModelConfig{Spec: spec, Job: job, NumJobs: numJobs, Estimator: EstimatorForkJoin})
	if err != nil {
		return Comparison{}, err
	}
	tp, err := core.Predict(ModelConfig{Spec: spec, Job: job, NumJobs: numJobs, Estimator: EstimatorTripathi})
	if err != nil {
		return Comparison{}, err
	}
	sim := res.MeanResponse()
	return Comparison{
		Simulated:   sim,
		ForkJoin:    fj.ResponseTime,
		Tripathi:    tp.ResponseTime,
		ForkJoinErr: stats.SignedRelError(fj.ResponseTime, sim),
		TripathiErr: stats.SignedRelError(tp.ResponseTime, sim),
	}, nil
}
