package hadoop2perf

import "testing"

func TestFacadeQuickstart(t *testing.T) {
	spec := DefaultCluster(2)
	job, err := NewJob(0, 512, 128, 2, WordCount())
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(ModelConfig{Spec: spec, Job: job, NumJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pred.ResponseTime <= 0 {
		t.Errorf("response = %v", pred.ResponseTime)
	}
	res, err := Simulate(SimConfig{Spec: spec, Jobs: []Job{job}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanResponse() <= 0 {
		t.Errorf("sim response = %v", res.MeanResponse())
	}
}

func TestFacadeProfilesAndBaselines(t *testing.T) {
	spec := DefaultCluster(2)
	for _, p := range []Profile{WordCount(), Grep(), TeraSort()} {
		job, err := NewJob(0, 512, 128, 2, p)
		if err != nil {
			t.Fatal(err)
		}
		h, err := PredictHerodotou(job, spec)
		if err != nil {
			t.Fatal(err)
		}
		a, err := PredictARIA(job, spec)
		if err != nil {
			t.Fatal(err)
		}
		if h.Total <= 0 || a.Avg <= 0 {
			t.Errorf("%s: baselines %v / %v", p.Name, h.Total, a.Avg)
		}
		if !(a.Low <= a.Avg && a.Avg <= a.Up) {
			t.Errorf("%s: ARIA bounds out of order", p.Name)
		}
	}
}

func TestFacadeCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-backed comparison in -short mode")
	}
	spec := DefaultCluster(2)
	job, err := NewJob(0, 512, 128, 2, WordCount())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(spec, job, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Simulated <= 0 || cmp.ForkJoin <= 0 || cmp.Tripathi <= 0 {
		t.Errorf("comparison = %+v", cmp)
	}
	if cmp.ForkJoin >= cmp.Tripathi {
		t.Errorf("estimator ordering: fj %v >= tp %v", cmp.ForkJoin, cmp.Tripathi)
	}
}

func TestFacadeCompareDegenerateInputs(t *testing.T) {
	// Compare happy path aside (above), the facade must reject impossible
	// configurations instead of hanging a simulation.
	spec := DefaultCluster(2)
	job, err := NewJob(0, 512, 128, 2, WordCount())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(spec, job, 1, 1, 0); err == nil {
		t.Error("zero reps accepted")
	}
	bad := job
	bad.InputMB = 0
	if _, err := Compare(spec, bad, 1, 1, 1); err == nil {
		t.Error("zero-input job accepted")
	}
}

func TestFacadeService(t *testing.T) {
	// The facade constructor wires the full service stack: engine, cache
	// and HTTP handler.
	svc := NewService(ServiceOptions{Workers: 2, CacheSize: 8})
	spec := DefaultCluster(2)
	job, err := NewJob(0, 512, 128, 2, WordCount())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := svc.Predict(t.Context(), PredictRequest{Spec: spec, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Prediction.ResponseTime <= 0 {
		t.Fatalf("response = %v", resp.Prediction.ResponseTime)
	}
	again, err := svc.Predict(t.Context(), PredictRequest{Spec: spec, Job: job})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeat predict not cached")
	}
	plan, err := svc.Plan(t.Context(), PlanRequest{
		Spec: spec, Job: job, Nodes: []int{2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best == nil || plan.Evaluated != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	if NewServiceHandler(svc, 0) == nil {
		t.Fatal("nil handler")
	}
	if m := svc.Metrics(); m.PredictRequests < 2 || m.HitRate <= 0 {
		t.Errorf("metrics = %+v", m)
	}
}
