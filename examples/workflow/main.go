// Multi-job workflows: an ETL-style diamond — extract feeds two parallel
// transforms that join into a load stage — evaluated analytically (stage
// predictions composed along the DAG's critical path) and validated
// against the simulator enforcing the same cross-job precedence. Single
// jobs answer "how long does this job take?"; the workflow layer answers
// "which stage should I speed up?".
package main

import (
	"fmt"
	"log"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)
	spec := hadoop2perf.DefaultCluster(4)

	dag := &hadoop2perf.WorkflowDAG{
		Stages: []string{"extract", "left", "right", "load"},
		Edges: []hadoop2perf.WorkflowEdge{
			{From: "extract", To: "left"}, {From: "extract", To: "right"},
			{From: "left", To: "load"}, {From: "right", To: "load"},
		},
	}
	inputs := []struct {
		mb      float64
		reduces int
	}{{4 * 1024, 4}, {2 * 1024, 4}, {2 * 1024, 4}, {1024, 2}}

	cfgs := make([]hadoop2perf.ModelConfig, len(inputs))
	jobs := make([]hadoop2perf.Job, len(inputs))
	for i, in := range inputs {
		job, err := hadoop2perf.NewJob(i, in.mb, 128, in.reduces, hadoop2perf.WordCount())
		if err != nil {
			log.Fatal(err)
		}
		jobs[i] = job
		cfgs[i] = hadoop2perf.ModelConfig{Spec: spec, Job: job, NumJobs: 1}
	}

	wf, err := hadoop2perf.PredictWorkflow(dag, cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ETL diamond on a 4-node cluster (extract → left|right → load)")
	fmt.Println("\nstage     start    finish    slack  critical  concurrency")
	for i, st := range wf.Stages {
		mark := " "
		if st.Critical {
			mark = "*"
		}
		fmt.Printf("%-8s %6.1fs  %7.1fs  %6.1fs     %s         %d\n",
			dag.Stages[i], st.Start, st.Finish, st.Slack, mark, st.Concurrency)
	}
	fmt.Printf("\nmodel makespan: %.1fs  critical path: %v\n", wf.ResponseTime, wf.CriticalPath)

	// The simulator releases each job only when its parents' last task
	// completes — the same precedence the model composed.
	sim, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: jobs, Workflow: dag, Seed: 7,
		Scheduler: hadoop2perf.PolicyFair,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated makespan: %.1fs (%+.1f%% model error)\n",
		sim.Makespan, 100*(wf.ResponseTime-sim.Makespan)/sim.Makespan)
	fmt.Println("\nthe slack column is the planning signal: speeding up a stage with")
	fmt.Println("slack buys nothing — only the critical path moves the makespan")
}
