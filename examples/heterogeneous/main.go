// Heterogeneous clusters: real Hadoop deployments mix hardware generations,
// while the paper assumes identical nodes. This example opens that scenario
// axis end to end:
//
//  1. a 2-class cluster (current-generation nodes plus a half-speed older
//     generation with slower disks) is described once as a class table;
//  2. the analytic model and the discrete-event simulator both price tasks
//     against the class of the node each container lands on, and their
//     estimates are compared;
//  3. the what-if planner sweeps class *mixes* — "N fast + M slow" — under a
//     deadline, answering the procurement question "is it cheaper to add
//     old nodes from the spare pool or buy fewer new ones?".
package main

import (
	"context"
	"fmt"
	"log"

	"hadoop2perf"
)

// fleet describes the two hardware generations of the example cluster.
func fleet(fast, slow int) hadoop2perf.Cluster {
	spec := hadoop2perf.DefaultCluster(0)
	spec.NumNodes = 0
	spec.Classes = []hadoop2perf.NodeClass{
		{
			Name:        "gen2",
			Count:       fast,
			Capacity:    hadoop2perf.Resource{MemoryMB: 32768, VCores: 32},
			CPUs:        6,
			Disks:       1,
			DiskMBps:    240,
			NetworkMBps: 110,
			Speed:       1, // calibrated baseline generation
		},
		{
			Name:        "gen1",
			Count:       slow,
			Capacity:    hadoop2perf.Resource{MemoryMB: 16384, VCores: 16},
			CPUs:        4,
			Disks:       1,
			DiskMBps:    140,
			NetworkMBps: 110,
			Speed:       0.6, // older cores: CPU demands divide by 0.6
		},
	}
	return spec
}

func main() {
	log.SetFlags(0)
	job, err := hadoop2perf.NewJob(0, 8*1024, 128, 4, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}

	// 1+2: model vs simulator on a fixed 4 fast + 4 slow cluster.
	spec := fleet(4, 4)
	cmp, err := hadoop2perf.Compare(spec, job, 1, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("8 GB wordcount on 4x gen2 + 4x gen1:")
	fmt.Printf("  simulated  %7.1f s\n", cmp.Simulated)
	fmt.Printf("  fork/join  %7.1f s  (%+.1f%%)\n", cmp.ForkJoin, 100*cmp.ForkJoinErr)
	fmt.Printf("  tripathi   %7.1f s  (%+.1f%%)\n", cmp.Tripathi, 100*cmp.TripathiErr)

	// 3: sweep mixes under a deadline. Mixes are count vectors over the
	// template's classes: {fast, slow}.
	const deadline = 300.0
	mixes := [][]int{
		{2, 0}, {2, 2}, {2, 4}, {2, 8},
		{4, 0}, {4, 2}, {4, 4}, {4, 8},
		{6, 0}, {6, 2}, {8, 0},
	}
	svc := hadoop2perf.NewService(hadoop2perf.ServiceOptions{})
	plan, err := svc.Plan(context.Background(), hadoop2perf.PlanRequest{
		Spec:        spec,
		Job:         job,
		ClassCounts: mixes,
		DeadlineSec: deadline,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nmix sweep under a %.0f s deadline (strategy %s, %d pruned):\n", deadline, plan.Strategy, plan.Pruned)
	fmt.Println("  gen2  gen1   est. response   meets   node-seconds")
	for _, c := range plan.Candidates {
		mark := "   no"
		if c.Feasible {
			mark = "  yes"
		}
		fmt.Printf("  %4d  %4d   %10.1f s   %s   %12.0f\n",
			c.ClassCounts[0], c.ClassCounts[1], c.ResponseTime, mark, c.NodeSeconds)
	}
	if plan.Best != nil {
		fmt.Printf("\ncheapest feasible fleet: %d gen2 + %d gen1 (%.1f s, %.0f node-seconds)\n",
			plan.Best.ClassCounts[0], plan.Best.ClassCounts[1], plan.Best.ResponseTime, plan.Best.NodeSeconds)
	} else {
		fmt.Println("\nno swept mix meets the deadline")
	}
}
