// Capacity planning: the paper's motivating use case — "critical decision
// making in workload management and resource capacity planning" — answered
// with the analytic model instead of test runs on a real cluster.
//
// Question: how many nodes does a nightly 20 GB WordCount-like aggregation
// need to finish within a 6-minute SLA, and what does each size cost in
// node-hours? The model answers in milliseconds per candidate size; a real
// evaluation run would take tens of cluster-minutes per point.
package main

import (
	"fmt"
	"log"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)
	const (
		inputGB  = 20
		slaSec   = 360.0
		maxNodes = 24
	)
	fmt.Printf("SLA: %.0f s for a %d GB wordcount-style job\n\n", slaSec, inputGB)
	fmt.Println("nodes  maps  est. response (fork/join)   meets SLA   node-seconds")

	best := -1
	for n := 2; n <= maxNodes; n += 2 {
		spec := hadoop2perf.DefaultCluster(n)
		job, err := hadoop2perf.NewJob(0, inputGB*1024, 128, n, hadoop2perf.WordCount())
		if err != nil {
			log.Fatal(err)
		}
		pred, err := hadoop2perf.Predict(hadoop2perf.ModelConfig{
			Spec: spec, Job: job, NumJobs: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		meets := pred.ResponseTime <= slaSec
		mark := "  no"
		if meets {
			mark = " YES"
			if best < 0 {
				best = n
			}
		}
		fmt.Printf("%5d  %4d  %22.1f s  %s  %12.0f\n",
			n, job.NumMaps(), pred.ResponseTime, mark, pred.ResponseTime*float64(n))
	}
	if best < 0 {
		fmt.Printf("\nno cluster size up to %d nodes meets the SLA; relax it or shrink the input\n", maxNodes)
		return
	}
	fmt.Printf("\nsmallest cluster meeting the SLA: %d nodes\n", best)

	// Sanity-check the chosen size on the simulator before committing.
	spec := hadoop2perf.DefaultCluster(best)
	job, err := hadoop2perf.NewJob(0, inputGB*1024, 128, best, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}
	res, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 7,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator check at %d nodes: %.1f s (SLA %.0f s)\n",
		best, res.MeanResponse(), slaSec)

	// What would the job actually consume at this size? (paper §6 extension)
	use, _, err := hadoop2perf.EstimateResources(hadoop2perf.ModelConfig{
		Spec: spec, Job: job, NumJobs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted consumption: %.0f core-s CPU, %.0f disk-s, %.0f net-s\n",
		use.Total.CPUSeconds, use.Total.DiskSeconds, use.Total.NetworkSeconds)
	fmt.Printf("predicted mean utilization: cpu %.0f%%, disk %.0f%%, network %.0f%%\n",
		100*use.CPUUtilization, 100*use.DiskUtilization, 100*use.NetworkUtilization)
}
