// Capacity planning: the paper's motivating use case — "critical decision
// making in workload management and resource capacity planning" — answered
// with one what-if planner call against the prediction service instead of
// test runs on a real cluster.
//
// Question: how many nodes does a nightly 20 GB WordCount-like aggregation
// need to finish within a 6-minute SLA, and what does each size cost in
// node-seconds? The service sweeps every candidate size in parallel (and
// caches each prediction, so re-planning with a different SLA is free).
package main

import (
	"context"
	"fmt"
	"log"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)
	const (
		inputGB  = 20
		slaSec   = 360.0
		maxNodes = 24
	)
	svc := hadoop2perf.NewService(hadoop2perf.ServiceOptions{})
	job, err := hadoop2perf.NewJob(0, inputGB*1024, 128, 8, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}

	var nodes []int
	for n := 2; n <= maxNodes; n += 2 {
		nodes = append(nodes, n)
	}
	plan, err := svc.Plan(context.Background(), hadoop2perf.PlanRequest{
		Spec:        hadoop2perf.DefaultCluster(4),
		Job:         job,
		Nodes:       nodes,
		DeadlineSec: slaSec,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("SLA: %.0f s for a %d GB wordcount-style job\n\n", slaSec, inputGB)
	fmt.Println("nodes  est. response (fork/join)   meets SLA   node-seconds")
	for _, c := range plan.Candidates {
		mark := "  no"
		if c.Feasible {
			mark = " YES"
		}
		fmt.Printf("%5d  %22.1f s  %s  %12.0f\n", c.Nodes, c.ResponseTime, mark, c.NodeSeconds)
	}
	if plan.Best == nil {
		fmt.Printf("\nno cluster size up to %d nodes meets the SLA; relax it or shrink the input\n", maxNodes)
		return
	}
	best := *plan.Best
	fmt.Printf("\ncheapest cluster meeting the SLA: %d nodes (%.0f node-seconds)\n",
		best.Nodes, best.NodeSeconds)

	// Sanity-check the chosen size on the simulator before committing; the
	// service runs the median-of-seeds protocol behind the same cache.
	spec := hadoop2perf.DefaultCluster(best.Nodes)
	sim, err := svc.Simulate(context.Background(), hadoop2perf.SimulateRequest{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 7, Reps: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator check at %d nodes: %.1f s (SLA %.0f s)\n",
		best.Nodes, sim.Result.MeanResponse(), slaSec)

	// What would the job actually consume at this size? (paper §6 extension)
	use, _, err := hadoop2perf.EstimateResources(hadoop2perf.ModelConfig{
		Spec: spec, Job: job, NumJobs: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted consumption: %.0f core-s CPU, %.0f disk-s, %.0f net-s\n",
		use.Total.CPUSeconds, use.Total.DiskSeconds, use.Total.NetworkSeconds)
	fmt.Printf("predicted mean utilization: cpu %.0f%%, disk %.0f%%, network %.0f%%\n",
		100*use.CPUUtilization, 100*use.DiskUtilization, 100*use.NetworkUtilization)

	m := svc.Metrics()
	fmt.Printf("\nservice: %d computations (model + simulator), %d served from cache\n",
		m.CacheMisses, m.CacheHits)
}
