// Failure-aware planning: real clusters lose nodes mid-job — hardware dies,
// and cloud spot capacity gets revoked — yet the paper's model (and most
// capacity planning) assumes a fault-free run. This example opens that
// scenario axis end to end:
//
//  1. a fault scenario (node MTTF + repair, straggler tails, speculative
//     re-execution) is injected into the discrete-event simulator, and the
//     analytic model corrects its effective demands for the same scenario —
//     the two are compared at the p50;
//  2. the seeded repetitions stop being interchangeable under faults, so the
//     simulator reports p50/p95/p99 over the batch: tail planning material;
//  3. the planner sweeps reliable-vs-preemptible node mixes on the
//     simulator at the p99, answering "which mix is cheapest while meeting
//     the deadline even in bad draws?" — spot nodes are 3x cheaper but
//     carry a revocation hazard.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"hadoop2perf"
)

// scenario is the fault plan shared by the simulator and the model: node
// failures every ~5 minutes of node-time (repaired after 45 s), a 10%
// Pareto-tail straggler chance, and Hadoop-style speculation fighting back.
func scenario() *hadoop2perf.FaultPlan {
	return &hadoop2perf.FaultPlan{
		NodeMTTFSec:    300,
		RepairDelaySec: 45,
		StragglerProb:  0.1,
		Speculation:    true,
	}
}

// fleet is the procurement template: reliable on-demand nodes at price 3
// versus preemptible spot nodes at price 1 that the provider revokes about
// once per node-hour (revoked nodes rejoin like repaired ones).
func fleet() hadoop2perf.Cluster {
	spec := hadoop2perf.DefaultCluster(0)
	spec.NumNodes = 0
	spec.Classes = []hadoop2perf.NodeClass{
		{Name: "reliable", Count: 8, Capacity: hadoop2perf.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110, Price: 3},
		{Name: "spot", Count: 8, Capacity: hadoop2perf.Resource{MemoryMB: 32768, VCores: 32},
			CPUs: 6, Disks: 1, DiskMBps: 240, NetworkMBps: 110,
			Preemptible: true, RevocationRate: 60, Price: 1},
	}
	return spec
}

func main() {
	log.SetFlags(0)
	svc := hadoop2perf.NewService(hadoop2perf.ServiceOptions{})
	job, err := hadoop2perf.NewJob(0, 4096, 128, 4, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}
	spec := hadoop2perf.DefaultCluster(4)
	ctx := context.Background()

	// 1. Fault-free baseline, then the same configuration under the
	// scenario: simulator p50 versus the model's analytic correction.
	clean, err := svc.Simulate(ctx, hadoop2perf.SimulateRequest{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 7, Reps: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	faulty, err := svc.Simulate(ctx, hadoop2perf.SimulateRequest{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 7, Reps: 7, Faults: scenario(),
	})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := svc.Predict(ctx, hadoop2perf.PredictRequest{
		Spec: spec, Job: job, Faults: scenario(),
	})
	if err != nil {
		log.Fatal(err)
	}
	modelErr := (pred.Prediction.ResponseTime - faulty.Quantiles.P50) / faulty.Quantiles.P50
	fmt.Printf("4-node cluster, 4 GB wordcount, scenario: MTTF 300 s / repair 45 s, 10%% stragglers, speculation\n\n")
	fmt.Printf("  fault-free simulated p50:  %7.1f s\n", clean.Quantiles.P50)
	fmt.Printf("  faulty     simulated p50:  %7.1f s   (p95 %.1f, p99 %.1f)\n",
		faulty.Quantiles.P50, faulty.Quantiles.P95, faulty.Quantiles.P99)
	fmt.Printf("  model with correction:     %7.1f s   (%+.1f%% vs simulated p50)\n",
		pred.Prediction.ResponseTime, 100*modelErr)
	if st := faulty.Result.Faults; st != nil {
		fmt.Printf("  median run injected: %d node failures, %d tasks re-executed, %d speculative launches\n",
			st.NodeFailures, st.TasksReexecuted, st.SpeculativeLaunched)
	}
	if math.Abs(modelErr) > 0.25 {
		log.Fatalf("model drifted outside the calibrated envelope: %+.1f%%", 100*modelErr)
	}

	// 2. Tail-aware procurement: sweep reliable-vs-spot mixes on the
	// simulator, judge each at its p99, pick the cheapest that still meets
	// the deadline in bad draws.
	const deadlineSec = 400.0
	plan, err := svc.Plan(ctx, hadoop2perf.PlanRequest{
		Spec: fleet(), Job: job,
		ClassCounts:  [][]int{{6, 0}, {4, 2}, {2, 4}, {0, 6}},
		UseSimulator: true, Seed: 11, Reps: 7,
		Quantile:    0.99,
		DeadlineSec: deadlineSec,
		// Spot revocations come from the class table; the plan only adds the
		// rejoin behavior of the pool.
		Faults: &hadoop2perf.FaultPlan{RepairDelaySec: 45},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n6-node mixes under a %.0f s p99 deadline (spot revoked ~1/node-hour, price 1 vs 3):\n\n", deadlineSec)
	fmt.Println("  reliable  spot   p99 response   meets SLA   price-weighted cost")
	for _, c := range plan.Candidates {
		if c.Err != "" {
			log.Fatalf("mix %v failed: %s", c.ClassCounts, c.Err)
		}
		mark := "  no"
		if c.Feasible {
			mark = " YES"
		}
		fmt.Printf("  %8d  %4d   %10.1f s  %s  %16.0f\n",
			c.ClassCounts[0], c.ClassCounts[1], c.ResponseTime, mark, c.Cost)
	}
	if plan.Best == nil {
		fmt.Println("\nno mix meets the p99 deadline; add reliable nodes or relax the SLA")
		return
	}
	fmt.Printf("\ncheapest mix meeting the p99 deadline: %d reliable + %d spot (cost %.0f)\n",
		plan.Best.ClassCounts[0], plan.Best.ClassCounts[1], plan.Best.Cost)
}
