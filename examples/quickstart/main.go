// Quickstart: predict the response time of a WordCount job on a 4-node
// Hadoop 2.x cluster with both estimators, then validate the prediction
// against the discrete-event cluster simulator.
package main

import (
	"fmt"
	"log"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)

	// A 4-node cluster with the calibrated evaluation hardware and a 1 GB
	// WordCount job (8 input splits at the 128 MB default block size, one
	// reducer per node).
	spec := hadoop2perf.DefaultCluster(4)
	job, err := hadoop2perf.NewJob(0, 1024, 128, 4, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job: %.0f MB input -> %d map tasks, %d reduce tasks\n",
		job.InputMB, job.NumMaps(), job.NumReduces)

	// Analytic prediction with the paper's two estimators.
	for _, est := range []hadoop2perf.Estimator{
		hadoop2perf.EstimatorForkJoin,
		hadoop2perf.EstimatorTripathi,
	} {
		pred, err := hadoop2perf.Predict(hadoop2perf.ModelConfig{
			Spec: spec, Job: job, NumJobs: 1, Estimator: est,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model (%s): %.1f s (converged after %d iterations)\n",
			est, pred.ResponseTime, pred.Iterations)
	}

	// "Measure" on the simulated cluster: 5 seeded runs, median (the paper's
	// methodology).
	res, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 1,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated cluster: %.1f s\n", res.MeanResponse())

	// One call for the full comparison.
	cmp, err := hadoop2perf.Compare(spec, job, 1, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("errors: fork/join %+.1f%%, tripathi %+.1f%%\n",
		100*cmp.ForkJoinErr, 100*cmp.TripathiErr)
}
