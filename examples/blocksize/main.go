// Block-size tuning: the paper's Figure 15 experiment as a what-if tool.
// Halving the HDFS block size doubles the number of map tasks; more, shorter
// tasks change the wave structure, the scheduling overhead and the depth of
// the precedence tree. This example sweeps the block size for a fixed 5 GB
// job and reports the simulated effect next to the model estimate and the
// tree depth the paper links to estimation error.
package main

import (
	"fmt"
	"log"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)
	const nodes = 4
	spec := hadoop2perf.DefaultCluster(nodes)

	fmt.Printf("5 GB wordcount on %d nodes, sweeping the HDFS block size\n\n", nodes)
	fmt.Println("block   maps   simulated   fork/join        tree depth")
	for _, block := range []float64{256, 128, 64, 32} {
		job, err := hadoop2perf.NewJob(0, 5*1024, block, nodes, hadoop2perf.WordCount())
		if err != nil {
			log.Fatal(err)
		}
		res, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
			Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 1,
		}, 5)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := hadoop2perf.Predict(hadoop2perf.ModelConfig{
			Spec: spec, Job: job, NumJobs: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim := res.MeanResponse()
		fmt.Printf("%4.0fMB  %4d  %8.1fs  %8.1fs (%+5.1f%%)  %6d\n",
			block, job.NumMaps(), sim, pred.ResponseTime,
			100*(pred.ResponseTime-sim)/sim, pred.Tree.Depth())
	}
	fmt.Println("\nsmaller blocks -> more maps -> deeper precedence trees (the paper links this")
	fmt.Println("depth to estimation error: 17%/25% at 64 MB vs 13.5%/23% at 128 MB; on this")
	fmt.Println("substrate the model sees per-task overheads explicitly, so its error stays")
	fmt.Println("flat instead — see EXPERIMENTS.md for the discussion)")
}
