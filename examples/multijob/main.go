// Multi-job interference: reproduce the paper's Figure 14 scenario — how
// does the average job response time degrade as 1..4 identical 5 GB jobs
// run concurrently on a 4-node cluster? This is where the queueing-network
// part of the model earns its keep: static models (Herodotou, ARIA) cannot
// see cross-job contention at all.
package main

import (
	"fmt"
	"log"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)
	const nodes = 4
	spec := hadoop2perf.DefaultCluster(nodes)
	job, err := hadoop2perf.NewJob(0, 5*1024, 128, nodes, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}
	stat, err := hadoop2perf.PredictHerodotou(job, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4-node cluster, N concurrent 5GB wordcount jobs (fair scheduling)\n\n")
	fmt.Println("N   simulated   fork/join      tripathi       static-baseline")
	for n := 1; n <= 4; n++ {
		cmp, err := hadoop2perf.Compare(spec, job, n, 1, 5)
		if err != nil {
			log.Fatal(err)
		}
		// The static baseline is contention-blind: it predicts the same
		// response regardless of N.
		fmt.Printf("%d  %8.1fs  %8.1fs (%+5.1f%%)  %8.1fs (%+5.1f%%)  %8.1fs\n",
			n, cmp.Simulated,
			cmp.ForkJoin, 100*cmp.ForkJoinErr,
			cmp.Tripathi, 100*cmp.TripathiErr,
			stat.Total)
	}
	fmt.Println("\nthe static baseline misses the growth entirely; the dynamic model tracks it")
}
