// Trace-driven calibration: the paper's first initialization approach
// (§4.2.1) seeds the model from the history of real job executions. This
// example closes that loop end to end:
//
//  1. a workload is executed on the simulated cluster (standing in for a
//     real Hadoop deployment) and its job-history trace is written out;
//  2. the trace is read back and calibrated into a named profile on the
//     prediction service (/v1/calibrate in the HTTP API);
//  3. the same prediction is made twice — statically initialized
//     (Herodotou-style, the second approach) and profile-backed — and both
//     are judged against the simulated ground truth;
//  4. the profile is recalibrated from a fresh trace, demonstrating that
//     every cached prediction keyed on the old calibration is invalidated.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"

	"hadoop2perf"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()
	spec := hadoop2perf.DefaultCluster(4)
	job, err := hadoop2perf.NewJob(0, 2*1024, 128, 4, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}

	// 1: "production" execution — a median-of-seeds simulation whose trace
	// plays the role of the MapReduce JobHistory export.
	res, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 7,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	measured := res.MeanResponse()

	var traceDoc bytes.Buffer
	if err := hadoop2perf.WriteTrace(&traceDoc, res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2 GB wordcount on 4 nodes: simulated response %.1f s, trace %d bytes\n",
		measured, traceDoc.Len())

	// 2: calibrate the trace into a named profile. A light trim guards the
	// fit against stragglers; the CV floor keeps variability alive when the
	// trace is small.
	parsed, err := hadoop2perf.ReadTrace(&traceDoc)
	if err != nil {
		log.Fatal(err)
	}
	svc := hadoop2perf.NewService(hadoop2perf.ServiceOptions{})
	cal, err := svc.Calibrate(ctx, hadoop2perf.CalibrateRequest{
		Name:   "prod-wordcount",
		Result: parsed,
		Fit:    hadoop2perf.FitOptions{TrimFraction: 0.02, CVFloor: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %q v%d from %d jobs / %d samples (hash %.12s…)\n",
		cal.Profile.Name, cal.Profile.Version, cal.Profile.Jobs, cal.Profile.Samples, cal.Profile.Hash)

	// 3: the two initialization approaches of §4.2.1, head to head on the
	// same spec, judged against the simulated truth.
	static, err := svc.Predict(ctx, hadoop2perf.PredictRequest{Spec: spec, Job: job})
	if err != nil {
		log.Fatal(err)
	}
	calibrated, err := svc.Predict(ctx, hadoop2perf.PredictRequest{
		Spec: spec, Job: job, Profile: "prod-wordcount",
	})
	if err != nil {
		log.Fatal(err)
	}
	relErr := func(est float64) float64 { return 100 * (est - measured) / measured }
	fmt.Println("\ninitialization       estimate     vs. simulated")
	fmt.Printf("herodotou (static) %8.1f s   %+8.1f%%\n",
		static.Prediction.ResponseTime, relErr(static.Prediction.ResponseTime))
	fmt.Printf("trace-calibrated   %8.1f s   %+8.1f%%\n",
		calibrated.Prediction.ResponseTime, relErr(calibrated.Prediction.ResponseTime))
	if calibrated.Prediction.ResponseTime == static.Prediction.ResponseTime {
		log.Fatal("calibration had no effect — the two initializations should differ")
	}
	if math.Abs(relErr(calibrated.Prediction.ResponseTime)) < math.Abs(relErr(static.Prediction.ResponseTime)) {
		fmt.Println("the measured history brings the model closer to this cluster's truth")
	}

	// 4: recalibration invalidates. Warm the cache, refit the profile from a
	// fresh trace (a different seed stands in for "yesterday's jobs"), and
	// watch the same request compute anew against the new content.
	warm, err := svc.Predict(ctx, hadoop2perf.PredictRequest{Spec: spec, Job: job, Profile: "prod-wordcount"})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 99,
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := svc.Calibrate(ctx, hadoop2perf.CalibrateRequest{Name: "prod-wordcount", Result: res2}); err != nil {
		log.Fatal(err)
	}
	fresh, err := svc.Predict(ctx, hadoop2perf.PredictRequest{Spec: spec, Job: job, Profile: "prod-wordcount"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecalibration: warmed cache hit=%v, after refit hit=%v (profile v%d → v%d)\n",
		warm.Cached, fresh.Cached, warm.ProfileVersion, fresh.ProfileVersion)
	if fresh.Cached {
		log.Fatal("stale cached prediction served after recalibration")
	}
}
