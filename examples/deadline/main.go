// Deadline-driven resource allocation: the ARIA use case (paper §2.1) —
// given a job and a soft deadline, infer the number of task slots required,
// then cross-check ARIA's slot answer against the dynamic model and the
// simulator.
package main

import (
	"fmt"
	"log"

	"hadoop2perf"
	"hadoop2perf/internal/aria"
)

func main() {
	log.SetFlags(0)
	spec := hadoop2perf.DefaultCluster(4)
	job, err := hadoop2perf.NewJob(0, 5*1024, 128, 4, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}

	for _, deadline := range []float64{600, 300, 150} {
		slots, err := aria.SlotsForDeadline(job, spec, deadline)
		if err != nil {
			fmt.Printf("deadline %5.0f s: %v\n", deadline, err)
			continue
		}
		est, err := hadoop2perf.PredictARIA(job, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deadline %5.0f s: ARIA wants %d map+reduce slots "+
			"(cluster bounds: T_low=%.0f T_avg=%.0f T_up=%.0f)\n",
			deadline, slots, est.Low, est.Avg, est.Up)
	}

	// ARIA's slot arithmetic ignores contention and the map/shuffle pipeline;
	// the dynamic model and the simulator judge its cluster-level estimate.
	pred, err := hadoop2perf.Predict(hadoop2perf.ModelConfig{Spec: spec, Job: job, NumJobs: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := hadoop2perf.SimulateMedian(hadoop2perf.SimConfig{
		Spec: spec, Jobs: []hadoop2perf.Job{job}, Seed: 3,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	est, err := hadoop2perf.PredictARIA(job, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non the full 4-node cluster: ARIA T_avg=%.0f s, dynamic model=%.0f s, simulated=%.0f s\n",
		est.Avg, pred.ResponseTime, res.MeanResponse())
	fmt.Println("ARIA brackets the truth but its point estimate ignores pipeline overlap and contention;")
	fmt.Println("the dynamic model lands closer — the paper's argument for queueing-aware models.")
}
