// Deadline-driven resource allocation: the ARIA use case (paper §2.1) —
// given a job and a soft deadline, infer the resources required. ARIA's
// closed-form slot arithmetic answers instantly but ignores contention; the
// prediction service's what-if planner sweeps real configurations (block
// size × reducers) under the same deadline, and the simulator arbitrates.
package main

import (
	"context"
	"fmt"
	"log"

	"hadoop2perf"
	"hadoop2perf/internal/aria"
)

func main() {
	log.SetFlags(0)
	spec := hadoop2perf.DefaultCluster(4)
	job, err := hadoop2perf.NewJob(0, 5*1024, 128, 4, hadoop2perf.WordCount())
	if err != nil {
		log.Fatal(err)
	}

	for _, deadline := range []float64{600, 300, 150} {
		slots, err := aria.SlotsForDeadline(job, spec, deadline)
		if err != nil {
			fmt.Printf("deadline %5.0f s: %v\n", deadline, err)
			continue
		}
		est, err := hadoop2perf.PredictARIA(job, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deadline %5.0f s: ARIA wants %d map+reduce slots "+
			"(cluster bounds: T_low=%.0f T_avg=%.0f T_up=%.0f)\n",
			deadline, slots, est.Low, est.Avg, est.Up)
	}

	// The planner answers the richer question ARIA cannot: which job
	// configuration on the fixed 4-node cluster meets the deadline, at what
	// predicted response? All candidates are evaluated in parallel.
	svc := hadoop2perf.NewService(hadoop2perf.ServiceOptions{})
	const deadline = 300.0
	plan, err := svc.Plan(context.Background(), hadoop2perf.PlanRequest{
		Spec:         spec,
		Job:          job,
		BlockSizesMB: []float64{64, 128, 256},
		Reducers:     []int{2, 4, 8},
		DeadlineSec:  deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhat-if sweep on 4 nodes (deadline %.0f s): %d configurations\n",
		deadline, len(plan.Candidates))
	fmt.Println("block MB  reducers  est. response  meets deadline")
	for _, c := range plan.Candidates {
		mark := "  no"
		if c.Feasible {
			mark = " YES"
		}
		fmt.Printf("%8.0f  %8d  %11.1f s  %s\n", c.BlockSizeMB, c.Reducers, c.ResponseTime, mark)
	}
	if plan.Best != nil {
		fmt.Printf("best configuration: %.0f MB blocks, %d reducers (%.1f s)\n",
			plan.Best.BlockSizeMB, plan.Best.Reducers, plan.Best.ResponseTime)
	}

	// ARIA's slot arithmetic ignores contention and the map/shuffle pipeline;
	// the dynamic model and the simulator judge its cluster-level estimate.
	cmp, err := svc.Compare(context.Background(), hadoop2perf.CompareRequest{
		Spec: spec, Job: job, NumJobs: 1, Seed: 3, Reps: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	est, err := hadoop2perf.PredictARIA(job, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\non the full 4-node cluster: ARIA T_avg=%.0f s, dynamic model=%.0f s, simulated=%.0f s\n",
		est.Avg, cmp.ForkJoin, cmp.Simulated)
	fmt.Println("ARIA brackets the truth but its point estimate ignores pipeline overlap and contention;")
	fmt.Println("the dynamic model lands closer — the paper's argument for queueing-aware models.")
}
